// Property-based suites: physical invariants of the device model and the
// simulator that must hold across every technology node and bias point,
// and cross-analysis consistency checks (DC vs AC vs transient).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "circuit/tech.hpp"
#include "circuits/benchmark_circuits.hpp"
#include "meas/ac_metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/structure.hpp"
#include "common/rng.hpp"

namespace circuit = gcnrl::circuit;
namespace sim = gcnrl::sim;
namespace meas = gcnrl::meas;
using gcnrl::Rng;

// ---------------------------------------------------------------------
// Device-model invariants, swept over all five technology nodes.
// ---------------------------------------------------------------------
class MosModelProperties : public ::testing::TestWithParam<std::string> {
 protected:
  circuit::Technology tech_ = circuit::make_technology(GetParam());
};

TEST_P(MosModelProperties, CurrentMonotoneInVgs) {
  const sim::MosModel m = sim::mos_model(tech_, false);
  circuit::Mosfet g;
  g.w = 10e-6;
  g.l = 2 * tech_.lmin;
  const double vds = tech_.vdd * 0.6;
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= tech_.vdd; vgs += 0.05) {
    const double id = sim::eval_mos(m, g, vgs, vds, 0.0).id;
    EXPECT_GE(id, prev - 1e-15) << "vgs=" << vgs;
    prev = id;
  }
}

TEST_P(MosModelProperties, CurrentMonotoneInVds) {
  const sim::MosModel m = sim::mos_model(tech_, false);
  circuit::Mosfet g;
  g.w = 10e-6;
  g.l = 2 * tech_.lmin;
  const double vgs = tech_.vth0_n + 0.25;
  double prev = -1.0;
  for (double vds = 0.0; vds <= tech_.vdd; vds += 0.02) {
    const double id = sim::eval_mos(m, g, vgs, vds, 0.0).id;
    EXPECT_GE(id, prev - 1e-15) << "vds=" << vds;
    prev = id;
  }
}

TEST_P(MosModelProperties, DerivativesMatchSecants) {
  const sim::MosModel m = sim::mos_model(tech_, false);
  circuit::Mosfet g;
  g.w = 8e-6;
  g.l = 3 * tech_.lmin;
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    const double vgs = rng.uniform(0.0, tech_.vdd);
    const double vds = rng.uniform(0.0, tech_.vdd);
    const auto op = sim::eval_mos(m, g, vgs, vds, 0.0);
    const double h = 1e-4;
    const double sg =
        (sim::eval_mos(m, g, vgs + h, vds, 0.0).id -
         sim::eval_mos(m, g, vgs - h, vds, 0.0).id) /
        (2.0 * h);
    const double sd =
        (sim::eval_mos(m, g, vgs, vds + h, 0.0).id -
         sim::eval_mos(m, g, vgs, vds - h, 0.0).id) /
        (2.0 * h);
    const double tol = 1e-6 + 0.02 * (std::fabs(sg) + std::fabs(sd));
    EXPECT_NEAR(op.gm, sg, tol);
    EXPECT_NEAR(op.gds, sd, tol);
  }
}

TEST_P(MosModelProperties, SourceDrainExchangeAntisymmetry) {
  const sim::MosModel m = sim::mos_model(tech_, false);
  circuit::Mosfet g;
  g.w = 6e-6;
  g.l = 2 * tech_.lmin;
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const double vg = rng.uniform(0.0, tech_.vdd);
    const double va = rng.uniform(0.0, tech_.vdd);
    const double vb = rng.uniform(0.0, tech_.vdd);
    const double fwd = sim::eval_mos(m, g, vg, va, vb).id;
    const double rev = sim::eval_mos(m, g, vg, vb, va).id;
    EXPECT_NEAR(fwd, -rev, 1e-12 + 1e-9 * std::fabs(fwd));
  }
}

TEST_P(MosModelProperties, PmosComplementSymmetry) {
  const sim::MosModel mn = sim::mos_model(tech_, false);
  sim::MosModel mp = mn;
  mp.pmos = true;
  circuit::Mosfet g;
  g.w = 12e-6;
  g.l = 2 * tech_.lmin;
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const double vg = rng.uniform(-tech_.vdd, tech_.vdd);
    const double vd = rng.uniform(-tech_.vdd, tech_.vdd);
    const double vs = rng.uniform(-tech_.vdd, tech_.vdd);
    const auto n = sim::eval_mos(mn, g, vg, vd, vs);
    const auto p = sim::eval_mos(mp, g, -vg, -vd, -vs);
    EXPECT_NEAR(n.id, -p.id, 1e-12 + 1e-9 * std::fabs(n.id));
    EXPECT_NEAR(n.gm, p.gm, 1e-9 + 1e-6 * std::fabs(n.gm));
  }
}

TEST_P(MosModelProperties, CapsScaleWithGeometry) {
  const sim::MosModel m = sim::mos_model(tech_, false);
  circuit::Mosfet g1;
  g1.w = 5e-6;
  g1.l = 2 * tech_.lmin;
  circuit::Mosfet g2 = g1;
  g2.m = 3;
  const auto c1 = sim::mos_caps(m, g1);
  const auto c2 = sim::mos_caps(m, g2);
  EXPECT_NEAR(c2.cgs / c1.cgs, 3.0, 1e-9);
  EXPECT_NEAR(c2.cgd / c1.cgd, 3.0, 1e-9);
  EXPECT_GT(c1.cgs, c1.cgd);  // channel cap dominates overlap
}

INSTANTIATE_TEST_SUITE_P(AllNodes, MosModelProperties,
                         ::testing::ValuesIn(circuit::available_nodes()));

// ---------------------------------------------------------------------
// Simulator cross-analysis consistency.
// ---------------------------------------------------------------------
namespace {

const auto kTech = circuit::make_technology("180nm");

}  // namespace

TEST(SimConsistency, AcSuperpositionOfSources) {
  // Two AC sources driving a linear network: response equals the sum of
  // individual responses (the solver is linear in the RHS).
  auto build = [](double ac1, double ac2) {
    circuit::Netlist nl;
    const int a = nl.node("a");
    const int b = nl.node("b");
    const int out = nl.node("out");
    nl.add_vsource("V1", a, 0, 0.0, ac1);
    nl.add_vsource("V2", b, 0, 0.0, ac2);
    nl.add_resistor("R1", a, out, 1e3, false);
    nl.add_resistor("R2", b, out, 2e3, false);
    nl.add_capacitor("C1", out, 0, 1e-9, false);
    return nl;
  };
  const double f = 2e5;
  auto v_out = [&](double a1, double a2) {
    circuit::Netlist nl = build(a1, a2);
    sim::Simulator s(nl, kTech);
    return s.ac({f}).phasor(0, nl.find_node("out").value());
  };
  const auto both = v_out(1.0, 0.7);
  const auto only1 = v_out(1.0, 0.0);
  const auto only2 = v_out(0.0, 0.7);
  EXPECT_NEAR(std::abs(both - (only1 + only2)), 0.0, 1e-12);
}

TEST(SimConsistency, TransientSettlesToDcSolution) {
  // A nonlinear circuit driven by constant sources: the transient must
  // remain at the DC operating point.
  circuit::Netlist nl;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int out = nl.node("out");
  const int in = nl.node("in");
  nl.add_vsource("VDD", vdd, 0, 1.8);
  nl.add_vsource("VIN", in, 0, 0.75);
  nl.add_resistor("RL", vdd, out, 10e3, false);
  nl.add_nmos("M1", out, in, 0, 0, 5e-6, 0.36e-6);
  nl.add_capacitor("CL", out, 0, 1e-12, false);
  sim::Simulator s(nl, kTech);
  const double v_dc = s.op().node(out);
  sim::TranOptions opt;
  opt.tstop = 50e-9;
  opt.dt = 0.5e-9;
  const auto tr = s.tran(opt);
  for (std::size_t i = 0; i < tr.t.size(); ++i) {
    EXPECT_NEAR(tr.at(static_cast<int>(i), out), v_dc, 2e-4);
  }
}

TEST(SimConsistency, AcGainMatchesTransientSmallSignal) {
  // Small sinusoid through a CS amp: transient amplitude ratio must match
  // the AC gain at that frequency.
  const double f = 1e6;
  const double amp = 1e-3;
  circuit::Netlist nl;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int out = nl.node("out");
  const int in = nl.node("in");
  nl.add_vsource("VDD", vdd, 0, 1.8);
  // Sine approximated by a fine PWL over two periods.
  circuit::Pwl sine;
  for (int i = 0; i <= 400; ++i) {
    const double t = 2.0 / f * i / 400.0;
    sine.points.push_back({t, 0.75 + amp * std::sin(2.0 * M_PI * f * t)});
  }
  nl.add_vsource("VIN", in, 0, 0.75, 1.0, sine);
  nl.add_resistor("RL", vdd, out, 10e3, false);
  nl.add_nmos("M1", out, in, 0, 0, 5e-6, 0.36e-6);
  sim::Simulator s(nl, kTech);
  const double ac_gain = std::abs(s.ac({f}).phasor(0, out));
  sim::TranOptions opt;
  opt.tstop = 2.0 / f;
  opt.dt = 1.0 / f / 400.0;
  const auto tr = s.tran(opt);
  // Peak-to-peak of the second period (first settles).
  double vmin = 1e9, vmax = -1e9;
  for (std::size_t i = 0; i < tr.t.size(); ++i) {
    if (tr.t[i] < 1.0 / f) continue;
    vmin = std::min(vmin, tr.at(static_cast<int>(i), out));
    vmax = std::max(vmax, tr.at(static_cast<int>(i), out));
  }
  const double tran_gain = (vmax - vmin) / (2.0 * amp);
  EXPECT_NEAR(tran_gain, ac_gain, 0.1 * ac_gain);
}

TEST(SimConsistency, NoiseScalesWithResistance) {
  auto psd_of = [&](double r) {
    circuit::Netlist nl;
    const int a = nl.node("a");
    nl.add_vsource("V1", a, 0, 1.0);
    const int mid = nl.node("mid");
    nl.add_resistor("R1", a, mid, r, false);
    nl.add_resistor("R2", mid, 0, r, false);
    sim::Simulator s(nl, kTech);
    return s.noise({1e4}, mid, 0).out_psd[0];
  };
  // Divider of two equal resistors: output PSD = 4kT*(R/2); doubling R
  // doubles the PSD.
  EXPECT_NEAR(psd_of(2e4) / psd_of(1e4), 2.0, 1e-6);
}

// ---------------------------------------------------------------------
// Measurement properties.
// ---------------------------------------------------------------------
class BandwidthProperty : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthProperty, SinglePoleBandwidthRecovered) {
  const double pole = GetParam();
  meas::AcCurve c;
  for (double f = pole / 1e3; f < pole * 1e3; f *= 1.12) {
    c.freq.push_back(f);
    c.h.push_back(10.0 / std::complex<double>(1.0, f / pole));
  }
  EXPECT_NEAR(meas::bandwidth_3db(c), pole, 0.03 * pole);
  EXPECT_NEAR(meas::gbw(c), 10.0 * pole, 0.35 * pole);
  EXPECT_NEAR(meas::peaking_db(c), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Decades, BandwidthProperty,
                         ::testing::Values(1e3, 1e5, 1e7, 1e9));

TEST(MeasProperty, PeakingDetectsResonance) {
  // Second-order low-Q vs high-Q: peaking must rank them correctly.
  auto curve = [](double q) {
    meas::AcCurve c;
    const double f0 = 1e6;
    for (double f = 1e3; f < 1e9; f *= 1.1) {
      const double w = f / f0;
      c.freq.push_back(f);
      c.h.push_back(1.0 /
                    std::complex<double>(1.0 - w * w, w / q));
    }
    return c;
  };
  EXPECT_GT(meas::peaking_db(curve(5.0)), meas::peaking_db(curve(0.5)));
  EXPECT_NEAR(meas::peaking_db(curve(5.0)), 20.0 * std::log10(5.0), 0.6);
}

// ---------------------------------------------------------------------
// Sparse-vs-dense engine parity over randomized designs of every
// registered benchmark circuit: the structure-reuse sparse engine is a
// drop-in replacement for the dense path, so every metric of the full
// measurement plan must match to solver-rounding precision (1e-12
// relative), and a design that fails to simulate must fail identically
// on both engines.
// ---------------------------------------------------------------------

namespace {

class SparseEngineScope {
 public:
  explicit SparseEngineScope(bool on) : prev_(sim::sparse_engine_enabled()) {
    sim::set_sparse_engine_enabled(on);
  }
  ~SparseEngineScope() { sim::set_sparse_engine_enabled(prev_); }

 private:
  bool prev_;
};

}  // namespace

class SparseDenseParity : public ::testing::TestWithParam<std::string> {};

TEST_P(SparseDenseParity, RandomDesignsMatchWithin1em12) {
  namespace circuits = gcnrl::circuits;
  const auto bc =
      circuits::make_benchmark(GetParam(), circuit::make_technology("180nm"));
  Rng rng(20260808);
  // Trial 0 is the human-expert sizing and trials 1-2 perturb it — these
  // are guaranteed (or near-guaranteed) to simulate, so the parity check
  // cannot go vacuous on circuits where fully random sizings rarely
  // converge (the LDO). The remaining trials are uniform random.
  constexpr int kTrials = 7;
  const gcnrl::la::Mat expert = bc.space.actions_from_params(bc.human_expert);
  int simulated = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    gcnrl::la::Mat actions;
    if (trial == 0) {
      actions = expert;
    } else if (trial <= 2) {
      actions = expert;
      for (int i = 0; i < actions.rows(); ++i) {
        for (int j = 0; j < actions.cols(); ++j) {
          actions(i, j) += 0.05 * rng.normal();
        }
      }
    } else {
      actions = bc.space.random_actions(rng);
    }
    circuit::Netlist nl = bc.netlist;
    bc.space.apply(nl, bc.space.refine(actions));
    const auto run =
        [&](bool sparse) -> std::optional<gcnrl::env::MetricMap> {
      SparseEngineScope scope(sparse);
      try {
        return bc.evaluate(nl);
      } catch (const sim::SimError&) {
        return std::nullopt;
      }
    };
    const auto dense = run(false);
    const auto sparse = run(true);
    ASSERT_EQ(dense.has_value(), sparse.has_value())
        << GetParam() << " trial " << trial
        << ": engines disagree on simulability";
    if (!dense.has_value()) continue;
    ++simulated;
    ASSERT_EQ(dense->size(), sparse->size());
    for (const auto& [key, dv] : *dense) {
      const auto it = sparse->find(key);
      ASSERT_NE(it, sparse->end()) << key;
      const double sv = it->second;
      const double scale =
          std::max({std::fabs(dv), std::fabs(sv), 1e-15});
      EXPECT_NEAR(sv, dv, 1e-12 * scale)
          << GetParam() << " trial " << trial << " metric " << key;
    }
  }
  EXPECT_GT(simulated, 0) << "every trial failed to simulate: parity "
                             "comparison never ran";
}

INSTANTIATE_TEST_SUITE_P(
    AllCircuits, SparseDenseParity,
    ::testing::ValuesIn(gcnrl::circuits::benchmark_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });
