// Unit tests for the dense linear-algebra substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/sparse.hpp"
#include "la/stats.hpp"

namespace la = gcnrl::la;
using gcnrl::Rng;

namespace {

la::Mat random_mat(int r, int c, Rng& rng, double scale = 1.0) {
  la::Mat m(r, c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) m(i, j) = rng.uniform(-scale, scale);
  }
  return m;
}

// Random structurally-symmetric sparse system (MNA-like: full diagonal,
// symmetric off-diagonal pattern, diagonally dominant-ish values) plus
// its dense mirror for reference solves.
struct SparseSys {
  la::SparsePattern pattern;
  std::vector<double> vals;
  la::Mat dense;
};

SparseSys random_sparse_system(int n, Rng& rng) {
  std::vector<std::pair<int, int>> coords;
  for (int i = 0; i < n; ++i) coords.emplace_back(i, i);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 3; ++k) {
      const int j = static_cast<int>(rng.uniform_index(n));
      if (j == i) continue;
      coords.emplace_back(i, j);
      coords.emplace_back(j, i);
    }
  }
  SparseSys s;
  s.pattern = la::SparsePattern::from_coords(n, std::move(coords));
  s.vals.assign(s.pattern.nnz(), 0.0);
  s.dense = la::Mat(n, n);
  for (int r = 0; r < n; ++r) {
    for (int e = s.pattern.row_ptr[r]; e < s.pattern.row_ptr[r + 1]; ++e) {
      const int c = s.pattern.col_idx[e];
      double v = rng.uniform(-1.0, 1.0);
      if (r == c) v += 4.0;
      s.vals[e] = v;
      s.dense(r, c) = v;
    }
  }
  return s;
}

}  // namespace

TEST(Matrix, ConstructionAndAccess) {
  la::Mat m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, InitializerList) {
  la::Mat m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, IdentityAndArithmetic) {
  la::Mat i = la::Mat::identity(3);
  la::Mat m = i * 2.0;
  m += i;
  EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  la::Mat d = m - i;
  EXPECT_DOUBLE_EQ(d(2, 2), 2.0);
}

TEST(Matrix, MatmulAgainstManual) {
  la::Mat a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  la::Mat b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  la::Mat c = la::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MatmulTransposedVariantsAgree) {
  Rng rng(7);
  la::Mat a = random_mat(5, 4, rng);
  la::Mat b = random_mat(5, 3, rng);
  la::Mat c1 = la::matmul_tn(a, b);            // A^T B
  la::Mat c2 = la::matmul(a.transpose(), b);
  ASSERT_TRUE(c1.same_shape(c2));
  for (int i = 0; i < c1.rows(); ++i) {
    for (int j = 0; j < c1.cols(); ++j) {
      EXPECT_NEAR(c1(i, j), c2(i, j), 1e-12);
    }
  }
  la::Mat d = random_mat(4, 5, rng);
  la::Mat e1 = la::matmul_nt(a, d.transpose());  // A * D (since (D^T)^T = D)
  la::Mat e2 = la::matmul(a, d);
  for (int i = 0; i < e1.rows(); ++i) {
    for (int j = 0; j < e1.cols(); ++j) {
      EXPECT_NEAR(e1(i, j), e2(i, j), 1e-12);
    }
  }
}

TEST(Matrix, Hadamard) {
  la::Mat a{{1.0, 2.0}, {3.0, 4.0}};
  la::Mat b{{2.0, 0.5}, {1.0, 0.25}};
  la::Mat c = la::hadamard(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
}

TEST(Lu, SolvesRandomSystem) {
  Rng rng(42);
  const int n = 12;
  la::Mat a = random_mat(n, n, rng);
  for (int i = 0; i < n; ++i) a(i, i) += 5.0;  // diagonally dominant-ish
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  std::vector<double> b(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  }
  const auto x = la::solve(a, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  la::Mat a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = la::solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  la::Mat a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(la::Lu<double>{a}, la::SingularMatrixError);
}

TEST(Lu, SolveTransposed) {
  Rng rng(3);
  const int n = 8;
  la::Mat a = random_mat(n, n, rng);
  for (int i = 0; i < n; ++i) a(i, i) += 4.0;
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::Lu<double> lu(a);
  const auto x = lu.solve_transposed(b);
  // Check A^T x = b.
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += a(j, i) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(Lu, ComplexSystem) {
  using cd = std::complex<double>;
  la::CMat a(2, 2);
  a(0, 0) = cd(1.0, 1.0);
  a(0, 1) = cd(0.0, -1.0);
  a(1, 0) = cd(2.0, 0.0);
  a(1, 1) = cd(0.0, 2.0);
  std::vector<cd> x_true{cd(1.0, -1.0), cd(0.5, 2.0)};
  std::vector<cd> b(2, cd(0.0));
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) b[i] += a(i, j) * x_true[j];
  }
  const auto x = la::solve(a, b);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-12);
  }
}

TEST(Lu, ComplexConjugateTransposeSolve) {
  using cd = std::complex<double>;
  Rng rng(11);
  const int n = 6;
  la::CMat a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a(i, j) = cd(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    a(i, i) += cd(4.0, 0.0);
  }
  std::vector<cd> b(n);
  for (auto& v : b) v = cd(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  la::Lu<cd> lu(a);
  const auto x = lu.solve_transposed(b, /*conjugate=*/true);
  for (int i = 0; i < n; ++i) {
    cd acc(0.0);
    for (int j = 0; j < n; ++j) acc += std::conj(a(j, i)) * x[j];
    EXPECT_NEAR(std::abs(acc - b[i]), 0.0, 1e-9);
  }
}

TEST(Cholesky, SolveSpd) {
  Rng rng(5);
  const int n = 10;
  la::Mat g = random_mat(n, n, rng);
  // A = G G^T + n I is SPD.
  la::Mat a = la::matmul_nt(g, g);
  for (int i = 0; i < n; ++i) a(i, i) += n;
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  }
  la::Cholesky chol(a);
  const auto x = chol.solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, LogDetMatchesKnown) {
  la::Mat a{{4.0, 0.0}, {0.0, 9.0}};
  la::Cholesky chol(a);
  EXPECT_NEAR(chol.log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  la::Mat a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(la::Cholesky{a}, la::NotPositiveDefiniteError);
}

TEST(Stats, MeanStd) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(la::mean(v), 2.5);
  EXPECT_NEAR(la::stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(la::min_of(v), 1.0);
  EXPECT_DOUBLE_EQ(la::max_of(v), 4.0);
}

TEST(Stats, NormalizeColumns) {
  la::Mat m{{1.0, 5.0}, {3.0, 5.0}, {5.0, 5.0}};
  const auto st = la::normalize_columns(m);
  EXPECT_DOUBLE_EQ(st.mean[0], 3.0);
  // Column 0 has zero mean / unit-ish scaling after normalization.
  EXPECT_NEAR(m(0, 0) + m(2, 0), 0.0, 1e-12);
  EXPECT_NEAR(m(1, 0), 0.0, 1e-12);
  // Constant column: centered, not scaled (std fallback = 1).
  EXPECT_NEAR(m(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(m(2, 1), 0.0, 1e-12);
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto k = r.uniform_index(7);
    EXPECT_LT(k, 7u);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(77);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng r(31);
  for (int i = 0; i < 2000; ++i) {
    const double x = r.truncated_normal(0.0, 2.0, -0.5, 0.5);
    EXPECT_GE(x, -0.5);
    EXPECT_LE(x, 0.5);
  }
}

TEST(SparseLu, MatchesDenseOnRandomSystems) {
  Rng rng(101);
  for (const int n : {5, 12, 25}) {
    const SparseSys s = random_sparse_system(n, rng);
    la::SparseLuD lu(s.pattern);
    ASSERT_TRUE(lu.factor_values(s.vals.data())) << "n=" << n;
    EXPECT_GE(lu.factor_nnz(), s.pattern.n);  // n pivots at minimum
    std::vector<double> b(n), x(n);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    lu.solve_into(b.data(), x.data());
    const auto x_ref = la::solve(s.dense, b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-9);
  }
}

TEST(SparseLu, SolveTransposedMatchesDense) {
  Rng rng(202);
  const int n = 14;
  const SparseSys s = random_sparse_system(n, rng);
  la::SparseLuD lu(s.pattern);
  ASSERT_TRUE(lu.factor_values(s.vals.data()));
  std::vector<double> b(n), x(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  lu.solve_transposed_into(b.data(), x.data());
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += s.dense(j, i) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

// A fixed-pivot refactorization on new values must reproduce a fresh
// factorization of those values bitwise — this is what makes the DC warm
// path, the transient loop, and the AC sweep deterministic regardless of
// how many designs a SparseLu has already factored.
TEST(SparseLu, RefactorMatchesFreshFactorBitwise) {
  Rng rng(303);
  const int n = 16;
  SparseSys s = random_sparse_system(n, rng);
  la::SparseLuD warm(s.pattern);
  ASSERT_TRUE(warm.factor_values(s.vals.data()));
  // New values, same dominance structure: the recorded pivots stay valid,
  // so factor_values takes the refactor path.
  for (auto& v : s.vals) v *= 1.0 + 0.01 * rng.uniform(-1.0, 1.0);
  ASSERT_TRUE(warm.factor_values(s.vals.data()));
  EXPECT_EQ(warm.repivots(), 0);
  la::SparseLuD cold(s.pattern);
  ASSERT_TRUE(cold.factor_values(s.vals.data()));
  std::vector<double> b(n), xw(n), xc(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  warm.solve_into(b.data(), xw.data());
  cold.solve_into(b.data(), xc.data());
  for (int i = 0; i < n; ++i) EXPECT_EQ(xw[i], xc[i]) << "i=" << i;
}

// Pinned pivot-fallback regression: a 2x2 whose recorded diagonal pivot
// collapses below the threshold-pivot bound on the next value set. The
// refactor must reject it (Status::PivotCheck) and factor_values must
// transparently re-pivot — counting the event — and still solve right.
TEST(SparseLu, PivotFallbackRepivotsAndStaysCorrect) {
  const la::SparsePattern p =
      la::SparsePattern::from_coords(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  la::SparseLuD lu(p);
  // CSR slot order: (0,0), (0,1), (1,0), (1,1).
  const double good[4] = {10.0, 1.0, 1.0, 10.0};
  const double bad[4] = {1e-6, 1.0, 1.0, 1e-6};
  ASSERT_EQ(lu.factor(good), la::SparseLuD::Status::Ok);
  EXPECT_EQ(lu.refactor(bad), la::SparseLuD::Status::PivotCheck);
  ASSERT_TRUE(lu.factor_values(bad));  // transparent re-pivot
  EXPECT_EQ(lu.repivots(), 1);
  const double b[2] = {1.0, 2.0};
  double x[2];
  lu.solve_into(b, x);
  la::Mat dense{{1e-6, 1.0}, {1.0, 1e-6}};
  const auto x_ref = la::solve(dense, {1.0, 2.0});
  EXPECT_NEAR(x[0], x_ref[0], 1e-9);
  EXPECT_NEAR(x[1], x_ref[1], 1e-9);
}

TEST(SparseLu, SingularIsRejectedNotUb) {
  const la::SparsePattern p =
      la::SparsePattern::from_coords(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  la::SparseLuD lu(p);
  const double zeros[4] = {0.0, 0.0, 0.0, 0.0};
  EXPECT_FALSE(lu.factor_values(zeros));
  EXPECT_FALSE(lu.factored());
  EXPECT_EQ(lu.last_status(), la::SparseLuD::Status::Singular);
}

TEST(SparseLu, ComplexMatchesDense) {
  using cd = std::complex<double>;
  Rng rng(404);
  const int n = 10;
  const SparseSys s = random_sparse_system(n, rng);
  std::vector<cd> vals(s.vals.size());
  la::CMat dense(n, n);
  for (int r = 0; r < n; ++r) {
    for (int e = s.pattern.row_ptr[r]; e < s.pattern.row_ptr[r + 1]; ++e) {
      const cd v(s.vals[e], 0.25 * rng.uniform(-1.0, 1.0));
      vals[e] = v;
      dense(r, s.pattern.col_idx[e]) = v;
    }
  }
  la::SparseLuC lu(s.pattern);
  ASSERT_TRUE(lu.factor_values(vals.data()));
  std::vector<cd> b(n), x(n);
  for (auto& v : b) v = cd(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  lu.solve_into(b.data(), x.data());
  const auto x_ref = la::solve(dense, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_ref[i]), 0.0, 1e-9);
}

namespace {

// Dense reference Y(w) = G + j*w*C from pattern-aligned value arrays.
la::CMat dense_ac_matrix(const la::SparsePattern& p,
                         const std::vector<double>& g,
                         const std::vector<double>& c, double omega) {
  la::CMat y(p.n, p.n);
  for (int r = 0; r < p.n; ++r) {
    for (int e = p.row_ptr[r]; e < p.row_ptr[r + 1]; ++e) {
      y(r, p.col_idx[e]) = std::complex<double>(g[e], omega * c[e]);
    }
  }
  return y;
}

}  // namespace

// The SoA blocked sweep must match a per-frequency dense complex solve,
// on a full 8-lane block and on a tail block with count < kMaxLanes.
TEST(SparseSweepLu, BlockedSolvesMatchDense) {
  using cd = std::complex<double>;
  Rng rng(505);
  const int n = 11;
  const SparseSys s = random_sparse_system(n, rng);
  std::vector<double> g = s.vals, c(s.vals.size(), 0.0);
  for (int r = 0; r < n; ++r) {
    for (int e = s.pattern.row_ptr[r]; e < s.pattern.row_ptr[r + 1]; ++e) {
      if (s.pattern.col_idx[e] == r) c[e] = 1e-12 * (1.0 + rng.uniform());
    }
  }
  std::vector<cd> b(n);
  for (auto& v : b) v = cd(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));

  la::SparseSweepLu sweep(s.pattern);
  constexpr int kLanes = la::SparseSweepLu::kMaxLanes;
  std::vector<cd> out(static_cast<std::size_t>(kLanes) * n);
  for (const int count : {kLanes, 3}) {
    std::vector<double> omega(count);
    for (int f = 0; f < count; ++f) {
      omega[f] = 2.0 * M_PI * std::pow(10.0, 4.0 + f + (count == 3 ? 4 : 0));
    }
    ASSERT_TRUE(sweep.factor_block(g.data(), c.data(), omega.data(), count));
    sweep.solve_block(b.data(), out.data(), n);
    for (int f = 0; f < count; ++f) {
      la::Lu<cd> dense(dense_ac_matrix(s.pattern, g, c, omega[f]));
      const auto x_ref = dense.solve(b);
      for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(out[static_cast<std::size_t>(f) * n + i] -
                             x_ref[i]),
                    0.0, 1e-9)
            << "count=" << count << " lane=" << f << " i=" << i;
      }
    }
    sweep.solve_transposed_block(b.data(), out.data(), n);
    for (int f = 0; f < count; ++f) {
      la::Lu<cd> dense(dense_ac_matrix(s.pattern, g, c, omega[f]));
      const auto x_ref = dense.solve_transposed(b, /*conjugate=*/false);
      for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(out[static_cast<std::size_t>(f) * n + i] -
                             x_ref[i]),
                    0.0, 1e-9)
            << "count=" << count << " lane=" << f << " i=" << i;
      }
    }
  }
}

// A block whose values invalidate the recorded pivot order must make
// factor_block re-pivot internally (not fail): the warm fast path rejects
// the lanes, the scalar factorization re-pivots at the block's first
// frequency, and the retried blocked refactor succeeds.
TEST(SparseSweepLu, LaneRejectionRepivotsTransparently) {
  using cd = std::complex<double>;
  const la::SparsePattern p =
      la::SparsePattern::from_coords(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  la::SparseSweepLu sweep(p);
  const double good[4] = {10.0, 1.0, 1.0, 10.0};
  const double bad[4] = {1e-6, 1.0, 1.0, 1e-6};
  const double c[4] = {1e-12, 0.0, 0.0, 1e-12};
  const double omega[2] = {1e4, 1e5};
  ASSERT_TRUE(sweep.factor_block(good, c, omega, 2));
  const long repivots_before = sweep.repivots();
  ASSERT_TRUE(sweep.factor_block(bad, c, omega, 2));
  EXPECT_GT(sweep.repivots(), repivots_before);
  const std::vector<cd> b{cd(1.0, 0.0), cd(2.0, 0.0)};
  std::vector<cd> out(2 * 2);
  sweep.solve_block(b.data(), out.data(), 2);
  for (int f = 0; f < 2; ++f) {
    la::CMat y(2, 2);
    y(0, 0) = cd(bad[0], omega[f] * c[0]);
    y(0, 1) = cd(bad[1], 0.0);
    y(1, 0) = cd(bad[2], 0.0);
    y(1, 1) = cd(bad[3], omega[f] * c[3]);
    const auto x_ref = la::solve(y, b);
    for (int i = 0; i < 2; ++i) {
      EXPECT_NEAR(std::abs(out[static_cast<std::size_t>(f) * 2 + i] -
                           x_ref[i]),
                  0.0, 1e-9);
    }
  }
}

TEST(MatrixHelpers, NormsAndFinite) {
  la::Mat m{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(la::frobenius_norm(m), 5.0);
  EXPECT_DOUBLE_EQ(la::max_abs(m), 4.0);
  EXPECT_TRUE(la::all_finite(m));
  m(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(la::all_finite(m));
}
