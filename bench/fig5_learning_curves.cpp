// Figure 5 reproduction: learning curves (best-FoM-so-far vs evaluation)
// for all methods on all four circuits. Emits one CSV per circuit
// (fig5_<circuit>.csv: column per method, row per evaluation step) and an
// ASCII summary of the FoM at several checkpoints.
//
// Like table1, the experiment is a declarative task list executed by
// api::run_tasks (shared service, lockstep seeds, automatic ES -> BO/MACE
// budget chaining); this harness only aggregates traces and writes CSVs.
#include <cstdio>
#include <map>

#include "common.hpp"

using namespace gcnrl;

int main() {
  const BenchConfig cfg = bench_config();
  const int seeds = std::max(1, cfg.seeds - 1);  // curves: 1 fewer seed
  const auto svc =
      std::make_shared<env::EvalService>(env::eval_config_from_env());

  std::printf("Fig 5: learning curves (steps=%d, seeds=%d)\n%s\n\n",
              cfg.steps, seeds, bench::eval_banner().c_str());

  std::vector<api::TaskSpec> tasks;
  for (const auto& circuit_name : circuits::benchmark_names()) {
    for (const auto& method : bench::kMethods) {
      api::TaskSpec t;
      t.circuit = circuit_name;
      t.method = method;
      t.steps = cfg.steps;
      t.warmup = cfg.warmup;
      t.seeds = seeds;
      tasks.push_back(t);
    }
  }
  api::RunOptions opts;
  opts.service = svc;
  opts.calib_samples = cfg.calib_samples;
  // Progress note on stderr: all tasks finish together under the merged
  // lockstep plan; stdout stays byte-reproducible.
  std::fprintf(stderr, "running %zu tasks through api::run_tasks; curves "
               "print on completion...\n", tasks.size());
  const auto results = api::run_tasks(tasks, opts);

  std::size_t next = 0;
  for (const auto& circuit_name : circuits::benchmark_names()) {
    std::map<std::string, std::vector<double>> mean_trace;
    for (const auto& method : bench::kMethods) {
      const api::TaskResult& sw = results[next++];
      // Mean best-so-far trace across seeds (traces may differ in length
      // for the sim-budgeted BO methods; use the shortest).
      std::size_t len = sw.runs.front().best_trace.size();
      for (const auto& r : sw.runs) len = std::min(len, r.best_trace.size());
      std::vector<double> mean(len, 0.0);
      const auto n_traces = static_cast<double>(sw.runs.size());
      for (const auto& r : sw.runs) {
        for (std::size_t i = 0; i < len; ++i) {
          mean[i] += r.best_trace[i] / n_traces;
        }
      }
      mean_trace[method] = std::move(mean);
      std::printf("  %-10s %-7s final %.3f\n", circuit_name.c_str(),
                  method.c_str(), mean_trace[method].back());
      std::fflush(stdout);
    }

    const std::string path = "fig5_" + circuit_name + ".csv";
    CsvWriter csv(path);
    std::vector<std::string> header = {"step"};
    for (const auto& m : bench::kMethods) header.push_back(m);
    csv.row(header);
    std::size_t max_len = 0;
    for (const auto& [m, t] : mean_trace) max_len = std::max(max_len, t.size());
    for (std::size_t i = 0; i < max_len; ++i) {
      std::vector<std::string> row = {std::to_string(i + 1)};
      for (const auto& m : bench::kMethods) {
        const auto& t = mean_trace[m];
        row.push_back(TextTable::num(t[std::min(i, t.size() - 1)], 6));
      }
      csv.row(row);
    }
    std::printf("  wrote %s\n", path.c_str());
  }
  std::printf("%s\n", bench::service_usage(*svc).c_str());
  std::printf(
      "\nPaper shape: GCN-RL's curve rises fastest and ends highest; NG-RL\n"
      "close behind; black-box methods below; random lowest.\n");
  return 0;
}
