#include "rl/replay_buffer.hpp"

namespace gcnrl::rl {

void ReplayBuffer::push(la::Mat actions, double reward) {
  if (data_.size() < capacity_) {
    data_.push_back({std::move(actions), reward});
  } else {
    data_[next_] = {std::move(actions), reward};
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    Rng& rng) const {
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch && !data_.empty(); ++i) {
    out.push_back(&data_[rng.uniform_index(data_.size())]);
  }
  return out;
}

}  // namespace gcnrl::rl
