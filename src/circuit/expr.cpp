#include "circuit/expr.hpp"

#include <cstdlib>
#include <iterator>
#include <stdexcept>

namespace gcnrl::circuit {

namespace {

struct Symbol {
  const char* name;
  double (*get)(const Technology&);
};

// One row per Technology field a builder could reasonably read. Adding a
// row here makes the symbol available to every .gcir file.
constexpr Symbol kSymbols[] = {
    {"vdd", [](const Technology& t) { return t.vdd; }},
    {"lmin", [](const Technology& t) { return t.lmin; }},
    {"lmax", [](const Technology& t) { return t.lmax; }},
    {"wmin", [](const Technology& t) { return t.wmin; }},
    {"wmax", [](const Technology& t) { return t.wmax; }},
    {"grid", [](const Technology& t) { return t.grid; }},
    {"mmax", [](const Technology& t) { return static_cast<double>(t.mmax); }},
    {"rmin", [](const Technology& t) { return t.rmin; }},
    {"rmax", [](const Technology& t) { return t.rmax; }},
    {"cmin", [](const Technology& t) { return t.cmin; }},
    {"cmax", [](const Technology& t) { return t.cmax; }},
};
constexpr int kNumSymbols = static_cast<int>(std::size(kSymbols));

// SI suffix -> decimal exponent appended textually to the mantissa.
int suffix_exponent(char c) {
  switch (c) {
    case 'T': return 12;
    case 'G': return 9;
    case 'M': return 6;
    case 'k':
    case 'K': return 3;
    case 'm': return -3;
    case 'u': return -6;
    case 'n': return -9;
    case 'p': return -12;
    case 'f': return -15;
    default: return 0;
  }
}

}  // namespace

const std::vector<std::string>& expr_symbols() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Symbol& s : kSymbols) out.emplace_back(s.name);
    return out;
  }();
  return names;
}

class ExprParser {
 public:
  explicit ExprParser(const std::string& text, Expr& out)
      : text_(text), out_(out) {}

  void run() {
    expr();
    if (pos_ != text_.size()) fail("unexpected trailing input");
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("expression \"" + text_ + "\" at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expr() {
    term();
    while (peek() == '+' || peek() == '-') {
      const char op = text_[pos_++];
      term();
      out_.ops_.push_back({op == '+' ? Expr::Op::Add : Expr::Op::Sub, 0, 0});
    }
  }

  void term() {
    factor();
    while (peek() == '*' || peek() == '/') {
      const char op = text_[pos_++];
      factor();
      out_.ops_.push_back({op == '*' ? Expr::Op::Mul : Expr::Op::Div, 0, 0});
    }
  }

  void factor() {
    const char c = peek();
    if (c == '-') {
      ++pos_;
      factor();
      out_.ops_.push_back({Expr::Op::Neg, 0, 0});
    } else if (c == '(') {
      ++pos_;
      expr();
      if (peek() != ')') fail("expected ')'");
      ++pos_;
    } else if ((c >= '0' && c <= '9') || c == '.') {
      number();
    } else if ((c >= 'a' && c <= 'z') || c == '_') {
      symbol();
    } else if (c == '\0') {
      fail("unexpected end of expression");
    } else {
      fail(std::string("unexpected character '") + c + "'");
    }
  }

  void number() {
    std::string mantissa;
    bool any_digit = false;
    while ((peek() >= '0' && peek() <= '9') || peek() == '.') {
      any_digit = any_digit || (peek() >= '0' && peek() <= '9');
      mantissa += text_[pos_++];
    }
    if (!any_digit) fail("malformed number");
    bool has_exponent = false;
    if (peek() == 'e' || peek() == 'E') {
      // Only treat it as an exponent when digits (or a signed digit run)
      // follow; otherwise fall through to the suffix check below.
      std::size_t probe = pos_ + 1;
      if (probe < text_.size() &&
          (text_[probe] == '+' || text_[probe] == '-')) {
        ++probe;
      }
      if (probe < text_.size() && text_[probe] >= '0' &&
          text_[probe] <= '9') {
        has_exponent = true;
        mantissa += text_[pos_++];
        if (peek() == '+' || peek() == '-') mantissa += text_[pos_++];
        while (peek() >= '0' && peek() <= '9') mantissa += text_[pos_++];
      }
    }
    if (!has_exponent && suffix_exponent(peek()) != 0) {
      // Textual expansion keeps decimal->binary rounding identical to a
      // C++ source literal: "50u" becomes the string "50e-6", never the
      // product 50.0 * 1e-6.
      mantissa += 'e';
      mantissa += std::to_string(suffix_exponent(text_[pos_++]));
    }
    char* end = nullptr;
    const double v = std::strtod(mantissa.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number \"" + mantissa + "\"");
    }
    out_.ops_.push_back({Expr::Op::Num, v, 0});
  }

  void symbol() {
    std::string name;
    while ((peek() >= 'a' && peek() <= 'z') ||
           (peek() >= '0' && peek() <= '9') || peek() == '_') {
      name += text_[pos_++];
    }
    for (int i = 0; i < kNumSymbols; ++i) {
      if (name == kSymbols[i].name) {
        out_.ops_.push_back({Expr::Op::Sym, 0, i});
        return;
      }
    }
    std::string known;
    for (const std::string& s : expr_symbols()) {
      known += known.empty() ? s : ", " + s;
    }
    fail("unknown symbol \"" + name + "\" (known: " + known + ")");
  }

  const std::string& text_;
  Expr& out_;
  std::size_t pos_ = 0;
};

Expr Expr::parse(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("expression: empty input");
  }
  Expr out;
  out.text_ = text;
  ExprParser(text, out).run();
  return out;
}

double Expr::eval(const Technology& tech) const {
  if (ops_.empty()) return 0.0;
  // Stack depth is bounded by the program length; expressions are tiny.
  std::vector<double> stack;
  stack.reserve(ops_.size());
  for (const Step& s : ops_) {
    switch (s.op) {
      case Op::Num:
        stack.push_back(s.num);
        break;
      case Op::Sym:
        stack.push_back(kSymbols[s.sym].get(tech));
        break;
      case Op::Neg:
        stack.back() = -stack.back();
        break;
      default: {
        const double b = stack.back();
        stack.pop_back();
        double& a = stack.back();
        if (s.op == Op::Add) a += b;
        else if (s.op == Op::Sub) a -= b;
        else if (s.op == Op::Mul) a *= b;
        else a /= b;
      }
    }
  }
  return stack.back();
}

}  // namespace gcnrl::circuit
