#include "common.hpp"

#include <stdexcept>

namespace gcnrl::bench {

rl::RunResult run_optimizer_timed(env::SizingEnv& env, opt::Optimizer& opt,
                                  int steps, double seconds) {
  return rl::run_optimizer(env, opt, steps, seconds);
}

std::string eval_banner() {
  const env::EvalServiceConfig cfg = env::eval_config_from_env();
  return "eval engine: threads=" + std::to_string(cfg.threads) +
         (cfg.threads > 1 ? " (thread pool)" : " (serial)") +
         ", cache=" + std::to_string(cfg.cache_capacity);
}

MethodRun run_method(const std::string& method, const EnvFactory& factory,
                     int steps, int warmup, std::uint64_t seed,
                     double rl_seconds, const rl::DdpgConfig& base_cfg) {
  auto env = factory.make();
  Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  MethodRun out;

  if (method == "Random") {
    out.result = rl::run_random(*env, steps, rng);
  } else if (method == "ES") {
    opt::CmaEs es(env->flat_dim(), rng);
    out.result = rl::run_optimizer(*env, es, steps);
  } else if (method == "BO") {
    opt::BayesOpt bo(env->flat_dim(), rng);
    out.result = run_optimizer_timed(*env, bo, steps, rl_seconds);
  } else if (method == "MACE") {
    opt::Mace mace(env->flat_dim(), rng);
    out.result = run_optimizer_timed(*env, mace, steps, rl_seconds);
  } else if (method == "NG-RL" || method == "GCN-RL") {
    rl::DdpgConfig cfg = base_cfg;
    cfg.use_gcn = method == "GCN-RL";
    cfg.warmup = warmup;
    rl::DdpgAgent agent(env->state(), env->adjacency(), env->kinds(), cfg,
                        rng);
    out.result = rl::run_ddpg(*env, agent, steps);
  } else {
    throw std::invalid_argument("run_method: unknown method " + method);
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

SweepResult sweep(const std::string& method, const EnvFactory& factory,
                  int steps, int warmup, int seeds, double rl_seconds,
                  const rl::DdpgConfig& base_cfg) {
  SweepResult out;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 1000 + 7919 * static_cast<std::uint64_t>(s);
    MethodRun run = run_method(method, factory, steps, warmup, seed,
                               rl_seconds, base_cfg);
    out.best.push_back(run.result.best_fom);
    out.traces.push_back(std::move(run.result.best_trace));
    out.rl_seconds += run.seconds / seeds;
  }
  out.mean = la::mean(out.best);
  out.stddev = la::stddev(out.best);
  return out;
}

std::string pm(double mean, double stddev, int precision) {
  return TextTable::num(mean, precision) + " +/- " +
         TextTable::num(stddev, 2);
}

}  // namespace gcnrl::bench
