#include "rl/run_loop.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "env/eval_service.hpp"

namespace gcnrl::rl {

void RunResult::record(double fom) {
  best_fom = std::max(best_fom, fom);
  best_trace.push_back(best_fom);
}

void RunResult::commit(const la::Mat& actions, const env::EvalResult& r) {
  ++evals;
  if (r.cached) ++cache_hits;
  if (r.fom > best_fom) {
    best_actions = actions;
    best_metrics = r.metrics;
  }
  record(r.fom);
}

void RunResult::commit_flat(const circuit::DesignSpace& space,
                            std::span<const double> x,
                            const env::EvalResult& r) {
  ++evals;
  if (r.cached) ++cache_hits;
  if (r.fom > best_fom) {
    best_actions = space.unflatten(x);
    best_metrics = r.metrics;
  }
  record(r.fom);
}

RunResult run_ddpg(env::SizingEnv& env, DdpgAgent& agent, int steps) {
  // DDPG is inherently sequential (each action depends on the previous
  // observation), so it steps one evaluation at a time; the EvalService
  // cache still short-circuits revisited designs. For parallelism across
  // independent runs, see run_ddpg_lockstep below.
  RunResult out;
  for (int step = 0; step < steps; ++step) {
    const la::Mat actions = agent.act_explore();
    const env::EvalResult r = env.step(actions);
    agent.observe(actions, r.fom);
    out.commit(actions, r);
  }
  return out;
}

std::vector<RunResult> run_ddpg_lockstep(std::span<env::SizingEnv* const> envs,
                                         std::span<DdpgAgent* const> agents,
                                         int steps) {
  if (envs.size() != agents.size()) {
    throw std::invalid_argument(
        "run_ddpg_lockstep: envs and agents must pair up");
  }
  const std::size_t pairs = envs.size();
  std::vector<RunResult> out(pairs);
  if (pairs == 0 || steps <= 0) return out;
  env::EvalService& svc = envs[0]->eval_service();
  for (std::size_t s = 1; s < pairs; ++s) {
    if (&envs[s]->eval_service() != &svc) {
      throw std::invalid_argument(
          "run_ddpg_lockstep: all envs must share one EvalService "
          "(construct them with the shared-service SizingEnv constructor)");
    }
  }
  std::vector<la::Mat> actions(pairs);
  std::vector<env::EvalJob> jobs(pairs);
  for (int step = 0; step < steps; ++step) {
    // Collect phase, pair order: each agent draws from its own RNG stream
    // exactly as its serial run_ddpg iteration would.
    for (std::size_t s = 0; s < pairs; ++s) {
      actions[s] = agents[s]->act_explore();
      jobs[s] = env::EvalJob{&envs[s]->bench(), &actions[s]};
    }
    // One multi-circuit batch: S independent simulations for the pool.
    const std::vector<env::EvalResult> results = svc.eval_batch_multi(jobs);
    // Observe phase, pair order: replay pushes and network updates are
    // strictly per-agent, so sequencing them preserves serial semantics.
    for (std::size_t s = 0; s < pairs; ++s) {
      agents[s]->observe(actions[s], results[s].fom);
      out[s].commit(actions[s], results[s]);
    }
  }
  return out;
}

RunResult run_optimizer(env::SizingEnv& env, opt::Optimizer& optimizer,
                        int steps, double seconds) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  RunResult out;
  int done = 0;
  while (done < steps) {
    if (seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (elapsed > seconds) break;
    }
    auto xs = optimizer.ask();
    // An exhausted (or buggy) optimizer proposing nothing can never
    // advance `done`; end the run instead of spinning forever.
    if (xs.empty()) break;
    // Truncate to the remaining budget: the cost model is "number of
    // simulations", so a population never overshoots the step budget.
    if (static_cast<int>(xs.size()) > steps - done) {
      xs.resize(static_cast<std::size_t>(steps - done));
    }
    const auto results = env.step_flat_batch(xs);
    std::vector<double> ys;
    ys.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ys.push_back(results[i].fom);
      out.commit_flat(env.bench().space, xs[i], results[i]);
    }
    optimizer.tell(xs, ys);
    done += static_cast<int>(xs.size());
  }
  return out;
}

RunResult run_random(env::SizingEnv& env, int steps, Rng rng) {
  RunResult out;
  // Fixed chunk size, deliberately independent of the backend thread
  // count: cache-state evolution (and hence the trace) depends only on
  // the chunking, so any GCNRL_EVAL_THREADS yields the identical result.
  constexpr int kChunk = 64;
  int done = 0;
  while (done < steps) {
    const int m = std::min(kChunk, steps - done);
    std::vector<la::Mat> actions;
    actions.reserve(m);
    for (int i = 0; i < m; ++i) actions.push_back(env.random_actions(rng));
    const auto results = env.step_batch(actions);
    for (int i = 0; i < m; ++i) out.commit(actions[i], results[i]);
    done += m;
  }
  return out;
}

}  // namespace gcnrl::rl
