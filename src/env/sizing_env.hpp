// The sizing environment: one "episode" of the paper's six-step loop
// (Fig. 2): embed topology -> states -> actions -> refine -> simulate ->
// reward.
//
// A BenchmarkCircuit bundles everything a circuit contributes: netlist,
// design space (+ matching groups), FoM definition, the measurement plan
// (an `evaluate` closure that runs the analysis testbenches on a sized
// netlist), and a human-expert reference sizing.
//
// State vector s_k = (k, t, h) per component k (paper Sec. III-C):
//   k  one-hot component index (fixed-topology mode) or scalar index
//      (topology-transfer mode — keeps the state dimension identical
//      across circuits, Sec. III-E);
//   t  one-hot of the 4 component types;
//   h  5 technology model features (Vsat, Vth0, Vfb, mu0, Uc; zero for
//      R/C).
// Each state dimension is normalized by mean/std across components.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuit/design_space.hpp"
#include "circuit/graph.hpp"
#include "circuit/netlist.hpp"
#include "circuit/tech.hpp"
#include "common/rng.hpp"
#include "env/fom.hpp"

namespace gcnrl::env {

struct BenchmarkCircuit {
  std::string name;
  circuit::Technology tech;
  circuit::Netlist netlist;
  circuit::DesignSpace space;
  FomSpec fom;
  // Runs all analyses on a sized netlist; throws sim::SimError on failure.
  //
  // CONCURRENCY CONTRACT (as close to a static_assert as a type-erased
  // closure allows): EvalService invokes this closure concurrently from
  // worker threads, each on its own sized-netlist copy. The closure must
  // therefore be a pure function of its argument: capture everything by
  // value (in particular the Technology — never a reference to the
  // enclosing builder's `tech`), construct Simulators locally, and touch
  // no shared mutable state. All four builders in src/circuits/ comply
  // and are covered by the 8-thread tests in test_circuits/test_eval.
  std::function<MetricMap(const circuit::Netlist&)> evaluate;
  circuit::DesignParams human_expert;
};

enum class IndexMode { OneHot, Scalar };

struct EvalResult {
  double fom = 0.0;
  bool sim_ok = false;
  bool spec_ok = false;
  bool cached = false;  // served from the EvalService result cache
  MetricMap metrics;
  circuit::DesignParams params;
};

// Evaluation-engine knobs (see eval_service.hpp for the engine itself).
struct EvalServiceConfig {
  int threads = 1;                    // 1 = serial backend (the default)
  std::size_t cache_capacity = 4096;  // LRU entries; 0 disables the cache
  // Cross-design DC warm start: seed each fresh evaluation's Newton solves
  // from the previous design the same submitter (attribution slot)
  // evaluated. Deterministic across thread counts and invocations — banks
  // are snapshotted/committed sequentially in submission order — but it
  // makes a result depend on the submitter's evaluation *history* (and so
  // on the cache hit/miss pattern), not on the design alone. Off by
  // default; opt in only where that purity trade is acceptable.
  bool dc_warm_start = false;
};

// Reads GCNRL_EVAL_THREADS / GCNRL_EVAL_CACHE / GCNRL_DC_WARM_START from
// the environment.
EvalServiceConfig eval_config_from_env();

class EvalService;

class SizingEnv {
 public:
  explicit SizingEnv(BenchmarkCircuit bc, IndexMode mode = IndexMode::OneHot,
                     EvalServiceConfig ecfg = eval_config_from_env());
  // Shared-service construction: the env evaluates through `svc`, drawing
  // on its thread pool and result cache alongside every other env holding
  // the same service (the lockstep multi-seed sweeps build S seed-envs
  // this way). A null `svc` falls back to a private service built from
  // eval_config_from_env(). The env claims its own attribution slot on the
  // service, so num_evals/num_sims/cache_hits stay per-env even when the
  // service is shared (service-wide totals live on the service itself).
  SizingEnv(BenchmarkCircuit bc, IndexMode mode,
            std::shared_ptr<EvalService> svc);
  ~SizingEnv();
  SizingEnv(SizingEnv&&) noexcept;
  SizingEnv& operator=(SizingEnv&&) noexcept;

  // --- topology view ---------------------------------------------------
  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int state_dim() const { return state_.cols(); }
  [[nodiscard]] const la::Mat& state() const { return state_; }
  [[nodiscard]] const la::Mat& adjacency() const { return adjacency_; }
  [[nodiscard]] const std::vector<circuit::Kind>& kinds() const {
    return kinds_;
  }
  [[nodiscard]] IndexMode index_mode() const { return mode_; }

  // --- evaluation ------------------------------------------------------
  // All evaluation funnels through the EvalService: step/step_flat are
  // thin wrappers over batches of one. Batch results come back in
  // submission order and are bit-identical for every thread count.
  // actions: n x kMaxActionDim in [-1, 1].
  EvalResult step(const la::Mat& actions);
  std::vector<EvalResult> step_batch(std::span<const la::Mat> actions);
  // Flattened views for the black-box baselines.
  EvalResult step_flat(std::span<const double> x);
  std::vector<EvalResult> step_flat_batch(
      std::span<const std::vector<double>> xs);
  [[nodiscard]] int flat_dim() const { return bc_.space.flat_dim(); }
  // Evaluate explicit parameters (the human-expert anchor) through the
  // identical refine -> simulate -> FoM pipeline.
  EvalResult evaluate_params(const circuit::DesignParams& p);

  la::Mat random_actions(Rng& rng) { return bc_.space.random_actions(rng); }

  // FoM normalizer calibration by random sampling (paper: 5000 samples).
  // Returns the number of successfully simulated samples.
  int calibrate(int samples, Rng& rng);

  [[nodiscard]] const BenchmarkCircuit& bench() const { return bc_; }
  BenchmarkCircuit& bench() { return bc_; }
  // Requested evaluations (cache hits included), simulator runs actually
  // executed, and cache-served results, attributed to THIS env's requests
  // (num_evals - num_sims = cache_hits even on a shared service). A result
  // another env simulated first is a cache hit here, so on a shared
  // service num_sims is a wall-clock-cost number, not a budget — the run
  // loops' RunResult::sims carries the warmth-independent simulated cost.
  [[nodiscard]] long num_evals() const;
  [[nodiscard]] long num_sims() const;
  [[nodiscard]] long cache_hits() const;
  [[nodiscard]] int eval_threads() const;
  // This env's attribution slot on its service (stamped on every job the
  // env submits; lockstep drivers stamp it on merged batches too).
  [[nodiscard]] int eval_attr() const { return attr_; }
  EvalService& eval_service() { return *svc_; }
  // The owning handle, for wiring further envs onto the same service.
  [[nodiscard]] const std::shared_ptr<EvalService>& eval_service_ptr() const {
    return svc_;
  }

 private:
  void build_state();

  BenchmarkCircuit bc_;
  IndexMode mode_;
  int n_ = 0;
  la::Mat adjacency_;
  la::Mat state_;
  std::vector<circuit::Kind> kinds_;
  std::shared_ptr<EvalService> svc_;
  int attr_ = -1;
};

}  // namespace gcnrl::env
