#include "sim/tran.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "sim/perf.hpp"

namespace gcnrl::sim {
namespace {

double src_at(double dc, const circuit::Pwl& pwl, double t) {
  return pwl.empty() ? dc : pwl.at(t);
}

// Time steps are ns-to-us scale; fixed-notation std::to_string collapses
// them to "0.000000". Scientific notation keeps the diagnostic useful.
std::string format_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6e", t);
  return buf;
}

}  // namespace

TranResult solve_tran(const SimContext& ctx, const OpPoint& ic,
                      const TranOptions& opt) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const MnaMap& m = ctx.map;
  const circuit::Netlist& nl = ctx.nl;
  const int steps = static_cast<int>(std::ceil(opt.tstop / opt.dt));

  TranResult out;
  out.t.reserve(steps + 1);
  out.v = la::Mat(steps + 1, m.num_nodes());

  // Unknown vector from the initial condition.
  std::vector<double> x(m.dim(), 0.0);
  for (int node = 1; node < m.num_nodes(); ++node) x[m.v(node)] = ic.v[node];
  for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
    x[m.branch(static_cast<int>(k))] = ic.branch_i[k];
  }
  out.t.push_back(0.0);
  for (int node = 0; node < m.num_nodes(); ++node) out.v(0, node) = ic.v[node];

  std::vector<double> x_prev = x;
  auto volt = [&](const std::vector<double>& xx, int node) {
    return node == 0 ? 0.0 : xx[m.v(node)];
  };

  const double gh = 1.0 / opt.dt;
  for (int step = 1; step <= steps; ++step) {
    const double t_now = step * opt.dt;
    bool converged = false;
    for (int iter = 0; iter < opt.max_newton; ++iter) {
      la::Mat j(m.dim(), m.dim());
      std::vector<double> f(m.dim(), 0.0);

      for (const auto& res : nl.resistors()) {
        const double g = 1.0 / std::max(res.r, kMinResistance);
        stamp_conductance(j, m, res.a, res.b, g);
        const double i = g * (volt(x, res.a) - volt(x, res.b));
        if (m.v(res.a) >= 0) f[m.v(res.a)] += i;
        if (m.v(res.b) >= 0) f[m.v(res.b)] -= i;
      }

      // Linear capacitors: backward-Euler companion model.
      auto stamp_cap = [&](int a, int b, double c) {
        const double g = c * gh;
        stamp_conductance(j, m, a, b, g);
        const double dv_now = volt(x, a) - volt(x, b);
        const double dv_prev = volt(x_prev, a) - volt(x_prev, b);
        const double i = g * (dv_now - dv_prev);
        if (m.v(a) >= 0) f[m.v(a)] += i;
        if (m.v(b) >= 0) f[m.v(b)] -= i;
      };
      for (const auto& cap : nl.capacitors()) stamp_cap(cap.a, cap.b, cap.c);

      for (std::size_t k = 0; k < nl.mosfets().size(); ++k) {
        const auto& mos = nl.mosfets()[k];
        const MosOp op = eval_mos(ctx.models[k], mos, volt(x, mos.g),
                                  volt(x, mos.d), volt(x, mos.s));
        const int id_row = m.v(mos.d);
        const int is_row = m.v(mos.s);
        if (id_row >= 0) f[id_row] += op.id;
        if (is_row >= 0) f[is_row] -= op.id;
        const int cg = m.v(mos.g);
        const int cd = m.v(mos.d);
        const int cs = m.v(mos.s);
        auto add = [&](int row, double sign) {
          if (row < 0) return;
          if (cg >= 0) j(row, cg) += sign * op.gm;
          if (cd >= 0) j(row, cd) += sign * op.gds;
          if (cs >= 0) j(row, cs) -= sign * (op.gm + op.gds);
        };
        add(id_row, 1.0);
        add(is_row, -1.0);
        // Device capacitances, same companion treatment.
        const MosCaps& c = ic.caps[k];
        stamp_cap(mos.g, mos.s, c.cgs);
        stamp_cap(mos.g, mos.d, c.cgd);
        stamp_cap(mos.d, mos.b, c.cdb);
        stamp_cap(mos.s, mos.b, c.csb);
      }

      for (const auto& src : nl.isources()) {
        const double i = src_at(src.dc, src.pwl, t_now);
        if (m.v(src.p) >= 0) f[m.v(src.p)] += i;
        if (m.v(src.n) >= 0) f[m.v(src.n)] -= i;
      }
      for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
        const auto& src = nl.vsources()[k];
        const int b = m.branch(static_cast<int>(k));
        const double i = x[b];
        if (m.v(src.p) >= 0) {
          f[m.v(src.p)] += i;
          j(m.v(src.p), b) += 1.0;
          j(b, m.v(src.p)) += 1.0;
        }
        if (m.v(src.n) >= 0) {
          f[m.v(src.n)] -= i;
          j(m.v(src.n), b) -= 1.0;
          j(b, m.v(src.n)) -= 1.0;
        }
        f[b] = volt(x, src.p) - volt(x, src.n) -
               src_at(src.dc, src.pwl, t_now);
      }

      for (int node = 1; node < m.num_nodes(); ++node) {
        const int row = m.v(node);
        j(row, row) += opt.gmin;
        f[row] += opt.gmin * x[row];
      }

      std::vector<double> rhs(f.size());
      for (std::size_t i = 0; i < f.size(); ++i) rhs[i] = -f[i];
      std::vector<double> dx;
      try {
        dx = la::Lu<double>(std::move(j)).solve(rhs);
      } catch (const la::SingularMatrixError&) {
        throw SimError("transient: singular Jacobian at t=" +
                       format_time(t_now) + " s");
      }
      double max_dv = 0.0;
      const int nv = m.num_nodes() - 1;
      for (int i = 0; i < nv; ++i) max_dv = std::max(max_dv, std::fabs(dx[i]));
      const double scale =
          max_dv > opt.step_limit ? opt.step_limit / max_dv : 1.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] += scale * dx[i];
        if (!std::isfinite(x[i])) {
          throw SimError("transient: divergence at t=" +
                         format_time(t_now) + " s");
        }
      }
      double max_res = 0.0;
      for (int i = 0; i < nv; ++i) max_res = std::max(max_res, std::fabs(f[i]));
      if (scale == 1.0 && max_dv < opt.tol_step &&
          max_res < opt.tol_residual) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      throw SimError("transient: Newton failed at t=" +
                     format_time(t_now) + " s");
    }
    out.t.push_back(t_now);
    for (int node = 1; node < m.num_nodes(); ++node) {
      out.v(step, node) = x[m.v(node)];
    }
    x_prev = x;
  }
  sim_perf_record(Analysis::Tran, steps,
                  std::chrono::duration<double>(clock::now() - t0).count());
  return out;
}

}  // namespace gcnrl::sim
