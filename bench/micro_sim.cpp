// google-benchmark microbenchmarks for the simulator substrate: these
// bound the evaluation cost that every optimization step pays.
#include <benchmark/benchmark.h>

#include "circuits/benchmark_circuits.hpp"
#include "common/rng.hpp"
#include "env/sizing_env.hpp"
#include "sim/simulator.hpp"

using namespace gcnrl;

namespace {

const auto kTech = circuit::make_technology("180nm");

void BM_DcSolve_TwoTia(benchmark::State& state) {
  auto bc = circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  for (auto _ : state) {
    sim::Simulator s(nl, kTech);
    benchmark::DoNotOptimize(s.op().v[0]);
  }
}
BENCHMARK(BM_DcSolve_TwoTia);

void BM_AcSweep_TwoTia_97pts(benchmark::State& state) {
  auto bc = circuits::make_two_tia(kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  sim::Simulator s(nl, kTech);
  s.op();
  const auto freqs = sim::logspace(1e3, 1e11, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.ac(freqs).v(0, 1));
  }
}
BENCHMARK(BM_AcSweep_TwoTia_97pts);

void BM_FullEval(benchmark::State& state, const char* name) {
  auto bc = circuits::make_benchmark(name, kTech);
  circuit::Netlist nl = bc.netlist;
  bc.space.apply(nl, bc.human_expert);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bc.evaluate(nl).size());
  }
}
BENCHMARK_CAPTURE(BM_FullEval, two_tia, "Two-TIA");
BENCHMARK_CAPTURE(BM_FullEval, two_volt, "Two-Volt");
BENCHMARK_CAPTURE(BM_FullEval, three_tia, "Three-TIA");
BENCHMARK_CAPTURE(BM_FullEval, ldo, "LDO");

void BM_EnvStepRandom_TwoTia(benchmark::State& state) {
  env::SizingEnv env(circuits::make_two_tia(kTech));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step(env.random_actions(rng)).fom);
  }
}
BENCHMARK(BM_EnvStepRandom_TwoTia);

}  // namespace
