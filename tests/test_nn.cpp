// Tests for the NN stack: Linear, GCN layer, Adam, init, serialization.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/gcn.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/serialize.hpp"

namespace ag = gcnrl::ag;
namespace la = gcnrl::la;
namespace nn = gcnrl::nn;
using gcnrl::Rng;

TEST(Init, XavierBounds) {
  Rng rng(1);
  const la::Mat m = nn::xavier_uniform(30, 50, rng);
  const double a = std::sqrt(6.0 / 80.0);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      EXPECT_LE(std::fabs(m(r, c)), a);
    }
  }
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(2);
  nn::Linear lin("l", 3, 2, rng);
  la::Mat x{{1.0, 2.0, 3.0}, {-1.0, 0.5, 0.0}};
  ag::Tape tape;
  ag::Var y = lin.forward(tape, tape.input(x));
  ASSERT_EQ(y.rows(), 2);
  ASSERT_EQ(y.cols(), 2);
  const la::Mat& w = lin.parameters()[0]->value;
  const la::Mat& b = lin.parameters()[1]->value;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      double expect = b(0, c);
      for (int k = 0; k < 3; ++k) expect += x(r, k) * w(k, c);
      EXPECT_NEAR(y.value()(r, c), expect, 1e-12);
    }
  }
}

TEST(Linear, GradientsFlowToParameters) {
  Rng rng(3);
  nn::Linear lin("l", 2, 2, rng);
  la::Mat x{{1.0, -1.0}};
  ag::Tape tape;
  lin.zero_grad();
  ag::Var loss = ag::sum_all(lin.forward(tape, tape.input(x)));
  tape.backward(loss);
  // d loss / d b = 1 per output; d loss / d w = x^T broadcast.
  const la::Mat& gb = lin.parameters()[1]->grad;
  EXPECT_DOUBLE_EQ(gb(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(gb(0, 1), 1.0);
  const la::Mat& gw = lin.parameters()[0]->grad;
  EXPECT_DOUBLE_EQ(gw(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(gw(1, 1), -1.0);
}

TEST(Gcn, NormalizedAdjacencyTwoNodeChain) {
  // A = [[0,1],[1,0]]; A+I has all degrees 2 -> A-hat = 0.5 everywhere.
  la::Mat a{{0.0, 1.0}, {1.0, 0.0}};
  const la::Mat ahat = nn::normalized_adjacency(a);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) EXPECT_NEAR(ahat(i, j), 0.5, 1e-12);
  }
}

TEST(Gcn, NormalizedAdjacencyIsSymmetric) {
  Rng rng(4);
  const int n = 7;
  la::Mat a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = rng.uniform() < 0.4 ? 1.0 : 0.0;
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const la::Mat ahat = nn::normalized_adjacency(a);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) EXPECT_NEAR(ahat(i, j), ahat(j, i), 1e-12);
  }
  // Identity graph: A-hat = I.
  const la::Mat id_hat = nn::normalized_adjacency(la::Mat(n, n));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(id_hat(i, i), 1.0, 1e-12);
}

TEST(Gcn, IdentityAdjacencyEqualsSharedFc) {
  // With A-hat = I the GCN layer must behave exactly like a Linear with
  // the same weights (the NG-RL ablation).
  Rng rng(5);
  nn::GcnLayer gcn("g", 3, 2, rng);
  la::Mat x{{0.3, -0.2, 1.0}, {0.1, 0.8, -0.5}};
  const la::Mat eye = la::Mat::identity(2);
  ag::Tape tape;
  ag::Var y = gcn.forward(tape, tape.input(x), eye);
  const la::Mat& w = gcn.parameters()[0]->value;
  const la::Mat& b = gcn.parameters()[1]->value;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      double expect = b(0, c);
      for (int k = 0; k < 3; ++k) expect += x(r, k) * w(k, c);
      EXPECT_NEAR(y.value()(r, c), expect, 1e-12);
    }
  }
}

TEST(Gcn, AggregationMixesNeighbors) {
  Rng rng(6);
  nn::GcnLayer gcn("g", 1, 1, rng);
  la::Mat a{{0.0, 1.0}, {1.0, 0.0}};
  const la::Mat ahat = nn::normalized_adjacency(a);
  la::Mat x{{1.0}, {3.0}};
  ag::Tape tape;
  ag::Var y = gcn.forward(tape, tape.input(x), ahat);
  // Both rows aggregate to 0.5*(1+3) = 2 before the affine map -> equal.
  EXPECT_NEAR(y.value()(0, 0), y.value()(1, 0), 1e-12);
}

TEST(Adam, MinimizesQuadratic) {
  // Minimize ||x - target||^2 over a parameter vector via the Module path.
  struct Quad : nn::Module {
    nn::Parameter p{"p", la::Mat(1, 4)};
    std::vector<nn::Parameter*> parameters() override { return {&p}; }
  } quad;
  la::Mat target{{1.0, -2.0, 0.5, 3.0}};
  nn::Adam opt(quad.parameters(), 0.05);
  for (int it = 0; it < 500; ++it) {
    quad.zero_grad();
    ag::Tape tape;
    ag::Var x = tape.make(quad.p.value, true, nullptr);
    ag::Node* node = x.node();
    nn::Parameter* pp = &quad.p;
    node->pullback = [pp, node] { pp->grad += node->grad; };
    ag::Var loss = ag::mse_const(x, target);
    tape.backward(loss);
    opt.step();
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(quad.p.value(0, c), target(0, c), 1e-3);
  }
}

TEST(Serialize, RoundTrip) {
  Rng rng(7);
  nn::Linear a("net.layer0", 4, 3, rng);
  nn::Linear b("net.layer1", 3, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "gcnrl_weights_test.bin")
          .string();
  std::vector<nn::Parameter*> params;
  for (auto* p : a.parameters()) params.push_back(p);
  for (auto* p : b.parameters()) params.push_back(p);
  nn::save_parameters(path, params);

  Rng rng2(99);
  nn::Linear a2("net.layer0", 4, 3, rng2);
  nn::Linear b2("net.layer1", 3, 2, rng2);
  std::vector<nn::Parameter*> params2;
  for (auto* p : a2.parameters()) params2.push_back(p);
  for (auto* p : b2.parameters()) params2.push_back(p);
  const int copied = nn::load_parameters(path, params2);
  EXPECT_EQ(copied, 4);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const la::Mat& src = params[i]->value;
    const la::Mat& dst = params2[i]->value;
    for (int r = 0; r < src.rows(); ++r) {
      for (int c = 0; c < src.cols(); ++c) {
        EXPECT_DOUBLE_EQ(src(r, c), dst(r, c));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, StrictRejectsMissing) {
  Rng rng(8);
  nn::Linear a("only.a", 2, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "gcnrl_weights_test2.bin")
          .string();
  nn::save_parameters(path, a.parameters());
  nn::Linear b("other.name", 2, 2, rng);
  EXPECT_THROW(nn::load_parameters(path, b.parameters(), /*strict=*/true),
               std::runtime_error);
  EXPECT_EQ(nn::load_parameters(path, b.parameters(), /*strict=*/false), 0);
  std::remove(path.c_str());
}

TEST(Serialize, CopyParametersByName) {
  Rng rng(9);
  nn::Linear a("shared", 3, 3, rng);
  nn::Linear b("shared", 3, 3, rng);
  const int copied = nn::copy_parameters(a.parameters(), b.parameters());
  EXPECT_EQ(copied, 2);
  EXPECT_DOUBLE_EQ(a.parameters()[0]->value(1, 2),
                   b.parameters()[0]->value(1, 2));
}

namespace {

std::string temp_file(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Overwrite the 4 bytes at `offset` with the little-endian u32 `v` — the
// corruption probe for the bounded-reader tests below.
void patch_u32(const std::string& path, long offset, std::uint32_t v) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
  std::fclose(f);
}

std::string shape_str(const gcnrl::la::Mat& m) {
  return std::to_string(m.rows()) + "x" + std::to_string(m.cols());
}

}  // namespace

TEST(Serialize, MetadataRoundTrip) {
  Rng rng(11);
  nn::Linear a("meta.layer", 2, 3, rng);
  const std::string path = temp_file("gcnrl_serialize_meta.gcr");
  nn::save_tensors(path, nn::snapshot_parameters(a.parameters()),
                   {{"circuit", "Two-TIA"}, {"node", "65nm"}});
  const nn::TensorFile f = nn::load_tensors(path);
  ASSERT_EQ(f.meta.size(), 2u);
  EXPECT_EQ(f.meta[0].first, "circuit");
  EXPECT_EQ(f.meta[0].second, "Two-TIA");
  EXPECT_EQ(f.meta[1].first, "node");
  EXPECT_EQ(f.meta[1].second, "65nm");
  const auto params = a.parameters();
  ASSERT_EQ(f.tensors.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(f.tensors[i].name, params[i]->name);
    const la::Mat& src = params[i]->value;
    const la::Mat& got = f.tensors[i].value;
    ASSERT_TRUE(got.same_shape(src));
    for (int r = 0; r < src.rows(); ++r) {
      for (int c = 0; c < src.cols(); ++c) {
        EXPECT_EQ(src(r, c), got(r, c));  // bitwise, not approximate
      }
    }
  }
  std::remove(path.c_str());
}

// Every length field the format carries is validated against the bytes
// actually left in the file BEFORE anything is allocated, and the magic /
// version gate rejects foreign or pre-versioning files.
TEST(Serialize, RejectsCorruptHeadersAndLengthFields) {
  Rng rng(12);
  nn::Linear a("hard.layer", 4, 3, rng);  // empty meta section
  const std::string path = temp_file("gcnrl_serialize_corrupt.gcr");
  const auto fresh = [&] { nn::save_parameters(path, a.parameters()); };
  // Fixed layout with empty meta: magic@0, version@4, meta_count@8,
  // tensor count@12, first name_len@16, name bytes@20, rows/cols after.
  const long name_len = static_cast<long>(a.parameters()[0]->name.size());

  fresh();
  patch_u32(path, 0, 0xDEADBEEF);  // wrong magic
  EXPECT_THROW(nn::load_tensors(path), std::runtime_error);

  fresh();
  patch_u32(path, 4, 99);  // unknown format version
  try {
    nn::load_tensors(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }

  fresh();
  patch_u32(path, 8, 0xFFFFFFFFu);  // absurd meta count
  EXPECT_THROW(nn::load_tensors(path), std::runtime_error);

  fresh();
  patch_u32(path, 12, 0xFFFFFFFFu);  // absurd tensor count
  EXPECT_THROW(nn::load_tensors(path), std::runtime_error);

  fresh();
  patch_u32(path, 16, 0x7FFFFFFFu);  // name length beyond the file
  EXPECT_THROW(nn::load_tensors(path), std::runtime_error);

  fresh();
  patch_u32(path, 20 + name_len, 0x7FFFFFFFu);  // rows: multi-GB claim
  EXPECT_THROW(nn::load_tensors(path), std::runtime_error);

  // Truncation anywhere inside the payload is caught, not zero-filled.
  fresh();
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  EXPECT_THROW(nn::load_tensors(path), std::runtime_error);

  std::remove(path.c_str());
}

// A strict-mode failure names the unmatched destination AND lists what the
// file actually contains (names + shapes), so a mismatched checkpoint is
// diagnosable from the message alone.
TEST(Serialize, StrictFailureListsSourceInventory) {
  Rng rng(13);
  nn::Linear a("only.a", 2, 3, rng);
  const std::string path = temp_file("gcnrl_serialize_inventory.gcr");
  nn::save_parameters(path, a.parameters());
  nn::Linear b("other.name", 2, 3, rng);
  try {
    nn::load_parameters(path, b.parameters(), /*strict=*/true);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(b.parameters()[0]->name), std::string::npos) << msg;
    for (const auto* p : a.parameters()) {
      EXPECT_NE(msg.find(p->name + " " + shape_str(p->value)),
                std::string::npos)
          << msg;
    }
  }
  std::remove(path.c_str());
}

// Non-strict load copies exactly the name+shape-matching subset: matching
// tensors land bitwise, everything else is left untouched.
TEST(Serialize, NonStrictCopiesExactlyShapeMatchingSubset) {
  Rng rng(14);
  nn::Linear src_a("m.a", 2, 2, rng);
  nn::Linear src_b("m.b", 3, 3, rng);
  const std::string path = temp_file("gcnrl_serialize_subset.gcr");
  std::vector<nn::Parameter*> file_params;
  for (auto* p : src_a.parameters()) file_params.push_back(p);
  for (auto* p : src_b.parameters()) file_params.push_back(p);
  nn::save_parameters(path, file_params);

  Rng rng2(15);
  nn::Linear dst_a("m.a", 2, 2, rng2);   // W and bias both match
  nn::Linear dst_b("m.b", 2, 3, rng2);   // W shape differs, bias matches
  const la::Mat w_before = dst_b.parameters()[0]->value;
  std::vector<nn::Parameter*> dst;
  for (auto* p : dst_a.parameters()) dst.push_back(p);
  for (auto* p : dst_b.parameters()) dst.push_back(p);
  EXPECT_EQ(nn::load_parameters(path, dst, /*strict=*/false), 3);
  // ...and strict mode rejects the same partial match.
  EXPECT_THROW(nn::load_parameters(path, dst, /*strict=*/true),
               std::runtime_error);
  for (std::size_t i = 0; i < 2; ++i) {
    const la::Mat& want = src_a.parameters()[i]->value;
    const la::Mat& got = dst_a.parameters()[i]->value;
    for (int r = 0; r < want.rows(); ++r) {
      for (int c = 0; c < want.cols(); ++c) EXPECT_EQ(want(r, c), got(r, c));
    }
  }
  // dst_b: bias copied, mismatched W untouched.
  EXPECT_EQ(dst_b.parameters()[1]->value(0, 0),
            src_b.parameters()[1]->value(0, 0));
  for (int r = 0; r < w_before.rows(); ++r) {
    for (int c = 0; c < w_before.cols(); ++c) {
      EXPECT_EQ(dst_b.parameters()[0]->value(r, c), w_before(r, c));
    }
  }
  std::remove(path.c_str());
}
