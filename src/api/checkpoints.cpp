#include "api/checkpoints.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace gcnrl::api {
namespace {

const char* mode_str(env::IndexMode mode) {
  return mode == env::IndexMode::OneHot ? "one_hot" : "scalar";
}

env::IndexMode mode_from_str(const std::string& s, const std::string& origin) {
  if (s == "one_hot") return env::IndexMode::OneHot;
  if (s == "scalar") return env::IndexMode::Scalar;
  throw std::runtime_error("checkpoint " + origin +
                           ": unknown index_mode \"" + s + "\"");
}

// Same character policy as gcnrl_cli's CSV paths: keep [A-Za-z0-9-.],
// replace the rest, so any artifact name maps to a portable filename.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!keep) c = '_';
  }
  return out;
}

void check_stamp(const std::string& name, const CheckpointStamp& stored,
                 const CheckpointStamp& expect) {
  if (stored.mode != expect.mode) {
    throw std::runtime_error(
        "checkpoint \"" + name + "\": index mode mismatch (stored " +
        mode_str(stored.mode) + ", requested " + mode_str(expect.mode) +
        "); state layouts differ between modes, refusing to load");
  }
  if (expect.mode == env::IndexMode::OneHot &&
      stored.circuit != expect.circuit) {
    throw std::runtime_error(
        "checkpoint \"" + name + "\": trained on circuit \"" +
        stored.circuit + "\" but requested for \"" + expect.circuit +
        "\"; one-hot state encodings are topology-specific — use "
        "index_mode scalar for cross-topology transfer");
  }
  // Same rationale for the content fingerprint: a same-named circuit from
  // different .gcir content is a different topology. Empty on either side
  // (C++ builder, or a pre-fingerprint artifact) skips the check.
  if (expect.mode == env::IndexMode::OneHot && !stored.source.empty() &&
      !expect.source.empty() && stored.source != expect.source) {
    throw std::runtime_error(
        "checkpoint \"" + name + "\": circuit \"" + expect.circuit +
        "\" was trained from source " + stored.source +
        " but is now registered from " + expect.source +
        "; the .gcir content changed, refusing a one-hot warm start");
  }
  // Node is deliberately unchecked: cross-node transfer (Table IV) is the
  // protocol this store exists for.
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

std::string CheckpointStore::path_of(const std::string& name) const {
  if (dir_.empty()) return {};
  return (std::filesystem::path(dir_) / (sanitize(name) + ".gcr")).string();
}

void CheckpointStore::put(const std::string& name,
                          const std::vector<nn::Parameter*>& params,
                          const CheckpointStamp& stamp) {
  if (name.empty()) {
    throw std::runtime_error("checkpoint: artifact name must be non-empty");
  }
  Entry entry{stamp, nn::snapshot_parameters(params)};
  if (!dir_.empty()) {
    std::filesystem::create_directories(dir_);
    nn::MetaList meta = {{"circuit", stamp.circuit},
                         {"node", stamp.node},
                         {"index_mode", mode_str(stamp.mode)}};
    // Written only when present, so builder-circuit artifacts keep the
    // exact pre-fingerprint file layout (and old readers their behavior).
    if (!stamp.source.empty()) meta.push_back({"circuit_src", stamp.source});
    nn::save_tensors(path_of(name), entry.tensors, meta);
  }
  std::lock_guard<std::mutex> lock(mu_);
  mem_.insert_or_assign(name, std::move(entry));
}

bool CheckpointStore::contains(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (mem_.count(name) > 0) return true;
  }
  return !dir_.empty() && std::filesystem::exists(path_of(name));
}

int CheckpointStore::load(const std::string& name,
                          const std::vector<nn::Parameter*>& dst,
                          const CheckpointStamp& expect) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = mem_.find(name);
    if (it != mem_.end()) {
      check_stamp(name, it->second.stamp, expect);
      return nn::assign_tensors(it->second.tensors, dst, /*strict=*/true,
                                "checkpoint \"" + name + "\"");
    }
  }
  const std::string path = path_of(name);
  if (path.empty() || !std::filesystem::exists(path)) {
    std::string known;
    for (const std::string& n : names()) {
      known += known.empty() ? n : ", " + n;
    }
    throw std::runtime_error(
        "checkpoint \"" + name + "\" not found" +
        (dir_.empty() ? std::string(" (no disk tier configured)")
                      : " in memory or " + dir_) +
        "; store contains: " + (known.empty() ? "nothing" : known));
  }
  const nn::TensorFile file = nn::load_tensors(path);
  CheckpointStamp stored;
  for (const auto& [key, value] : file.meta) {
    if (key == "circuit") stored.circuit = value;
    if (key == "node") stored.node = value;
    if (key == "index_mode") stored.mode = mode_from_str(value, path);
    if (key == "circuit_src") stored.source = value;
  }
  check_stamp(name, stored, expect);
  return nn::assign_tensors(file.tensors, dst, /*strict=*/true, path);
}

std::vector<std::string> CheckpointStore::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(mem_.size());
  for (const auto& [name, entry] : mem_) out.push_back(name);
  return out;
}

void CheckpointStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  mem_.clear();
}

CheckpointStore& default_checkpoint_store() {
  static CheckpointStore store = [] {
    const char* dir = std::getenv("GCNRL_CHECKPOINT_DIR");
    return CheckpointStore(dir != nullptr ? dir : "");
  }();
  return store;
}

}  // namespace gcnrl::api
