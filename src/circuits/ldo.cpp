// Low-dropout regulator (Fig. 6d analogue).
//
// Architecture: NMOS-input error amplifier (diff pair T1/T2, PMOS mirror
// load T3/T4, tail T5 self-biased from VREF), inverting gain stage
// (T7 with PMOS diode load T8) driving the gate of the PMOS pass device
// T6, and an R1/R2 divider feeding the regulated voltage back. CL is the
// (fixed) board capacitor; ILOAD the external load.
//
// Searched: T1..T8 (W, L, M) + R1, R2 -> 26 parameters.
// Metrics (paper Sec. IV-A): settling after load step up/down (TL+/TL-),
// load regulation (LR, in dB rejection, larger is better), settling after
// line step up/down (TV+/TV-), PSRR, quiescent+dropout power.
#include "circuits/benchmark_circuits.hpp"

#include "circuits/helpers.hpp"

namespace gcnrl::circuits {

using circuit::Netlist;
using circuit::Pwl;
using circuit::Technology;

namespace {

constexpr double kLoadLow = 1e-3;   // [A]
constexpr double kLoadNom = 5e-3;
constexpr double kLoadHigh = 10e-3;
constexpr double kEdge1 = 0.2e-6;   // disturbance edges [s]
constexpr double kEdge2 = 1.1e-6;
constexpr double kTstop = 2.0e-6;
constexpr double kDt = 2e-9;
constexpr double kEdgeRise = 10e-9;
constexpr double kSettleTol = 1e-3;  // [V]

}  // namespace

env::BenchmarkCircuit make_ldo(const Technology& tech) {
  env::BenchmarkCircuit bc;
  bc.name = "LDO";
  bc.tech = tech;

  Netlist& nl = bc.netlist;
  const int vdd = nl.node("vdd");
  nl.mark_supply("vdd");
  const int vref = nl.node("vref");
  nl.mark_supply("vref");  // reference rail, not a signal wire
  const int e1 = nl.node("e1");
  const int e2 = nl.node("e2");
  const int tails = nl.node("tails");
  const int gate_p = nl.node("gate_p");
  const int vout = nl.node("vout");
  const int vfb = nl.node("vfb");

  const double vref_v = tech.vdd / 2.0;
  nl.add_vsource("VDD", vdd, 0, tech.vdd);
  nl.add_vsource("VREF", vref, 0, vref_v);
  nl.add_isource("ILOAD", vout, 0, kLoadNom);

  const double l = tech.lmin;
  nl.add_nmos("T1", e1, vref, tails, 0, 20e-6, 2 * l, 2);  // pair (ref)
  nl.add_nmos("T2", e2, vfb, tails, 0, 20e-6, 2 * l, 2);   // pair (fb)
  nl.add_pmos("T3", e1, e1, vdd, vdd, 10e-6, 2 * l, 2);    // mirror diode
  nl.add_pmos("T4", e2, e1, vdd, vdd, 10e-6, 2 * l, 2);    // mirror out
  nl.add_nmos("T5", tails, vref, 0, 0, 10e-6, 2 * l, 2);   // tail
  nl.add_pmos("T6", vout, gate_p, vdd, vdd, 80e-6, l, 32); // pass device
  nl.add_nmos("T7", gate_p, e2, 0, 0, 20e-6, l, 2);        // gain stage
  nl.add_pmos("T8", gate_p, gate_p, vdd, vdd, 10e-6, l, 2);  // its load
  nl.add_resistor("R1", vout, vfb, 20e3);
  nl.add_resistor("R2", vfb, 0, 40e3);
  nl.add_capacitor("CL", vout, 0, 200e-12, /*designable=*/false);
  // ESD-style clamp: when a weak candidate design cannot source the
  // forced load current, the ideal ILOAD sink would otherwise drag vout
  // tens of volts negative and the DC solve would (rightly) never get
  // there. The clamp bounds the excursion near -Vth exactly like the pad
  // diode on a real chip, so failing designs fail *fast* and are rejected
  // by the collapsed-output check below.
  nl.add_nmos("T_ESD", 0, 0, vout, 0, 50e-6, tech.lmin, 8,
              /*designable=*/false);

  bc.space = circuit::DesignSpace::from_netlist(nl, tech);
  bc.space.add_match_group(nl, {"T1", "T2"});
  bc.space.add_match_group(nl, {"T3", "T4"});
  // The pass device may be very wide: widen its W search range.
  bc.space.comp(bc.space.find("T6")).p[0].hi = tech.wmax;

  env::FomSpec fom;
  fom.metrics = {
      // name, unit, weight, bound, spec_min, spec_max, log_norm
      {"tl_up", "s", -1.0, {}, {}, {}, true},
      {"tl_dn", "s", -1.0, {}, {}, {}, true},
      {"lr", "dB", +1.0, {}, 0.0, {}, false},
      {"tv_up", "s", -1.0, {}, {}, {}, true},
      {"tv_dn", "s", -1.0, {}, {}, {}, true},
      {"psrr", "dB", +1.0, {}, 0.0, {}, false},
      {"power", "W", -1.0, {}, {}, {}, true},
  };
  // Regulation spec: output must actually regulate (LR/PSRR above 0 dB
  // rejection) — the collapsed-output rejection already removes the worst
  // offenders before metrics are computed.
  bc.fom = fom;

  // Concurrency audit (EvalService contract on BenchmarkCircuit::evaluate):
  // every capture is an immutable value — node indices and a Technology
  // copy, never a reference into the builder — and all Simulators and
  // derived netlists are function-local, so concurrent invocations share
  // no mutable state.
  const Technology tech_copy = tech;
  bc.evaluate = [vout, tech_copy](const Netlist& sized) {
    env::MetricMap m;

    // --- DC / regulation ------------------------------------------------
    // The nominal operating point seeds every derived testbench below
    // (warm_start_from): PSRR shares the DC point exactly, the lo/hi load
    // and transient netlists differ only in the forced load or a PWL that
    // starts at the nominal value. Derived purely from `sized`, so
    // evaluation stays a pure function of it.
    double i_vdd_nom = 0.0;
    double vout_nom = 0.0;
    sim::OpPoint nom_op;
    {
      sim::Simulator s(sized, tech_copy);
      nom_op = s.op();
      vout_nom = nom_op.node(vout);
      i_vdd_nom = s.source_current("VDD");
      // Quiescent power only: the dropout loss (vdd - vout) * Iload is set
      // by the externally-forced load and would mask the bias-current
      // trade-offs the optimizer actually controls.
      m["power"] =
          std::max(tech_copy.vdd * (i_vdd_nom - kLoadNom), 1e-7);
      // PSRR at 1 kHz: AC on the supply.
      Netlist psrr_nl = sized;
      psrr_nl.find_vsource("VDD")->ac = 1.0;
      sim::Simulator sp(psrr_nl, tech_copy);
      sp.warm_start_from(nom_op);
      const auto ac = sp.ac({1e3});
      const double h = std::abs(ac.phasor(0, vout));
      m["psrr"] = -20.0 * std::log10(std::max(h, 1e-9));
    }
    {
      Netlist lo = sized;
      lo.find_isource("ILOAD")->dc = kLoadLow;
      Netlist hi = sized;
      hi.find_isource("ILOAD")->dc = kLoadHigh;
      sim::Simulator sl(lo, tech_copy);
      sl.warm_start_from(nom_op);
      sim::Simulator sh(hi, tech_copy);
      sh.warm_start_from(nom_op);
      const double dv =
          std::fabs(sl.op().node(vout) - sh.op().node(vout));
      const double r_out = dv / (kLoadHigh - kLoadLow);
      // Load regulation as rejection in dB (larger = stiffer output).
      m["lr"] = -20.0 * std::log10(std::max(r_out, 1e-6));
    }
    // A collapsed regulator (output far from the divider target) is a
    // failed design even if transients "settle": reject early.
    const double vout_target =
        tech_copy.vdd / 2.0 * (1.0 + sized.resistors()[0].r /
                                         std::max(sized.resistors()[1].r,
                                                  1.0));
    if (vout_nom < 0.25 * vout_target || vout_nom > tech_copy.vdd) {
      throw sim::SimError("LDO output collapsed");
    }

    // --- load transient ---------------------------------------------------
    {
      Netlist tr_nl = sized;
      tr_nl.find_isource("ILOAD")->pwl =
          Pwl{{{0.0, kLoadNom},
               {kEdge1, kLoadNom},
               {kEdge1 + kEdgeRise, kLoadHigh},
               {kEdge2, kLoadHigh},
               {kEdge2 + kEdgeRise, kLoadNom}}};
      sim::Simulator s(tr_nl, tech_copy);
      s.warm_start_from(nom_op);
      sim::TranOptions topt;
      topt.tstop = kTstop;
      topt.dt = kDt;
      const auto tr = s.tran(topt);
      const auto v = detail::tran_curve(tr, vout);
      const auto up = detail::window(v, kEdge1, kEdge2 - 0.05e-6);
      const auto dn = detail::window(v, kEdge2, kTstop);
      m["tl_up"] = meas::settling_time(up, kEdge1, kSettleTol);
      m["tl_dn"] = meas::settling_time(dn, kEdge2, kSettleTol);
    }
    // --- line transient ----------------------------------------------------
    {
      Netlist tr_nl = sized;
      const double v0 = tech_copy.vdd;
      tr_nl.find_vsource("VDD")->pwl = Pwl{{{0.0, v0},
                                            {kEdge1, v0},
                                            {kEdge1 + kEdgeRise, v0 + 0.2},
                                            {kEdge2, v0 + 0.2},
                                            {kEdge2 + kEdgeRise, v0}}};
      sim::Simulator s(tr_nl, tech_copy);
      s.warm_start_from(nom_op);
      sim::TranOptions topt;
      topt.tstop = kTstop;
      topt.dt = kDt;
      const auto tr = s.tran(topt);
      const auto v = detail::tran_curve(tr, vout);
      const auto up = detail::window(v, kEdge1, kEdge2 - 0.05e-6);
      const auto dn = detail::window(v, kEdge2, kTstop);
      m["tv_up"] = meas::settling_time(up, kEdge1, kSettleTol);
      m["tv_dn"] = meas::settling_time(dn, kEdge2, kSettleTol);
    }
    return m;
  };

  // Human-expert reference: 2x-length error amp for gain/offset, strong
  // pass device (W*M ~ 2.5 mm) for low dropout at 10 mA, divider for
  // vout = 1.5 * vref.
  {
    circuit::DesignParams p;
    p.v = {
        {24e-6, 2 * l, 2},   // T1
        {24e-6, 2 * l, 2},   // T2
        {12e-6, 2 * l, 2},   // T3
        {12e-6, 2 * l, 2},   // T4
        {12e-6, 2 * l, 2},   // T5
        {80e-6, l, 32},      // T6 pass
        {24e-6, l, 2},       // T7
        {12e-6, l, 2},       // T8
        {20e3, 0, 0},        // R1
        {40e3, 0, 0},        // R2
    };
    bc.human_expert = p;
  }
  return bc;
}

}  // namespace gcnrl::circuits
